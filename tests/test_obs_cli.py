"""``python -m repro.obs`` CLI tests: exit codes and artifact error paths.

The CLI contract the CI recipes rely on: 0 on success, 1 on failed
checks, 2 on unusable input (argparse rejections and
:class:`repro.obs.analyze.ArtifactError` alike).  The artifacts here are
synthesized by hand — no simulator run needed — so the error paths stay
fast and point at exactly one malformed thing at a time.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from repro.obs import ArtifactError, load_artifacts
from repro.obs.__main__ import main

#: One R request span (queue wait 40us, device 60us with a breakdown)
#: plus the track metadata the span extractor keys on.
TRACE_EVENTS = [
    {"ph": "M", "name": "thread_name", "pid": 1, "tid": 100,
     "args": {"name": "io-slot-0"}},
    {"ph": "B", "name": "R", "pid": 1, "tid": 100, "ts": 10.0,
     "args": {"queue": "reader", "queue_wait_us": 40.0, "device_us": 60.0,
              "breakdown": {"translate_us": 10.0, "nand_us": 50.0}}},
    {"ph": "E", "name": "R", "pid": 1, "tid": 100, "ts": 70.0},
]


def write_artifacts(dirpath: Path, counters=None) -> Path:
    dirpath.mkdir(parents=True, exist_ok=True)
    (dirpath / "trace.json").write_text(
        json.dumps({"traceEvents": TRACE_EVENTS})
    )
    (dirpath / "metrics.json").write_text(
        json.dumps(
            {
                "interval_us": 1000.0,
                "columns": ["time_us", "free_blocks"],
                "series": {"time_us": [0.0, 1000.0], "free_blocks": [8.0, 6.0]},
            }
        )
    )
    (dirpath / "counters.json").write_text(
        json.dumps(counters or {"ssd.host_reads": 2.0, "ssd.host_writes": 4.0})
    )
    return dirpath


class TestAnalyzeCommand:
    def test_happy_path_writes_reports(self, tmp_path, capsys):
        run_dir = write_artifacts(tmp_path / "run")
        out = tmp_path / "out"
        assert main(["analyze", str(run_dir), "--out", str(out)]) == 0
        report = json.loads((out / "report.json").read_text())
        assert report["schema"] == "repro.obs.analyze/1"
        assert report["requests"]["requests"] == 1
        assert (out / "report.md").read_text().startswith("# Device report")
        assert "p99" in capsys.readouterr().out

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["analyze", str(empty)]) == 2
        assert "no telemetry artifacts" in capsys.readouterr().err

    def test_truncated_trace_exits_2(self, tmp_path, capsys):
        run_dir = write_artifacts(tmp_path / "run")
        full = (run_dir / "trace.json").read_text()
        (run_dir / "trace.json").write_text(full[: len(full) // 2])
        assert main(["analyze", str(run_dir)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_trace_without_events_list_exits_2(self, tmp_path, capsys):
        run_dir = write_artifacts(tmp_path / "run")
        (run_dir / "trace.json").write_text(json.dumps({"traceEvents": "oops"}))
        assert main(["analyze", str(run_dir)]) == 2
        assert "traceEvents" in capsys.readouterr().err


class TestDiffCommand:
    def test_self_diff_is_quiet_and_zero(self, tmp_path, capsys):
        run_dir = write_artifacts(tmp_path / "run")
        out = tmp_path / "out"
        assert main(["diff", str(run_dir), str(run_dir), "--out", str(out)]) == 0
        diff = json.loads((out / "diff.json").read_text())
        assert diff["significant"] is False
        assert diff["counters"]["changed"] == []
        assert "0 of" in capsys.readouterr().out

    def test_diff_reports_moved_counters(self, tmp_path, capsys):
        base = write_artifacts(tmp_path / "a")
        current = write_artifacts(
            tmp_path / "b", counters={"ssd.host_reads": 3.0, "ssd.host_writes": 4.0}
        )
        assert main(["diff", str(base), str(current)]) == 0
        assert "ssd.host_reads" in capsys.readouterr().out

    def test_diff_without_counters_exits_2(self, tmp_path, capsys):
        base = write_artifacts(tmp_path / "a")
        current = write_artifacts(tmp_path / "b")
        (current / "counters.json").unlink()
        assert main(["diff", str(base), str(current)]) == 2
        assert "counters.json" in capsys.readouterr().err


class TestArgparseRejections:
    def test_unknown_scenario_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", "bogus", "--out", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_unknown_command_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["explode"])
        assert excinfo.value.code == 2


class TestCheckCommand:
    def test_truncated_trace_fails_check(self, tmp_path, capsys):
        run_dir = write_artifacts(tmp_path / "run")
        full = (run_dir / "trace.json").read_text()
        (run_dir / "trace.json").write_text(full[: len(full) // 2])
        assert main(["check", str(run_dir / "trace.json")]) == 1
        assert "invalid JSON" in capsys.readouterr().err

    def test_unbalanced_trace_fails_check(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "trace.json").write_text(
            json.dumps({"traceEvents": TRACE_EVENTS[:2]})
        )
        assert main(["check", str(run_dir / "trace.json")]) == 1
        assert "unclosed" in capsys.readouterr().err


class TestLoadArtifacts:
    def test_partial_directory_loads_what_exists(self, tmp_path):
        run_dir = write_artifacts(tmp_path / "run")
        (run_dir / "metrics.json").unlink()
        artifacts = load_artifacts(str(run_dir))
        assert artifacts["metrics"] is None
        assert artifacts["trace_events"] is not None
        assert artifacts["counters"] is not None

    def test_malformed_counters_raises(self, tmp_path):
        run_dir = write_artifacts(tmp_path / "run")
        (run_dir / "counters.json").write_text("[1, 2, 3]")
        with pytest.raises(ArtifactError, match="not a counter mapping"):
            load_artifacts(str(run_dir))
