"""Tests for the Conflict Resolution Buffer."""

from __future__ import annotations

from repro.core.crb import ConflictResolutionBuffer
from repro.core.segment import Segment

def approx_segment(start, length, ppa=0):
    return Segment.from_anchor(
        group_base=0, start_lpa=start, length=length, raw_slope=0.5,
        anchor_lpa=start, anchor_ppa=ppa, accurate=False,
    )


class TestCRBBasics:
    def test_insert_and_owner(self):
        crb = ConflictResolutionBuffer()
        seg = approx_segment(100, 6)
        crb.insert_segment(seg, [100, 101, 103, 104, 106])
        assert crb.owner(103) is seg
        assert crb.owner(105) is None
        assert crb.lpas_of(seg) == [100, 101, 103, 104, 106]

    def test_size_accounting_matches_paper_model(self):
        crb = ConflictResolutionBuffer()
        seg_a = approx_segment(100, 6)
        seg_b = approx_segment(102, 6)
        crb.insert_segment(seg_a, [100, 101, 103, 104, 106])
        crb.insert_segment(seg_b, [102, 105, 107, 108])
        # One byte per stored LPA plus one null separator per segment.
        assert crb.size_bytes() == 9 + 2
        assert len(crb) == 9
        assert crb.segment_count() == 2

    def test_newer_segment_steals_lpas(self):
        """Figure 9: LPA 105 must resolve to the newest covering segment."""
        crb = ConflictResolutionBuffer()
        older = approx_segment(100, 6)
        newer = approx_segment(102, 6)
        crb.insert_segment(older, [100, 101, 103, 104, 105, 106])
        crb.insert_segment(newer, [102, 105, 107, 108])
        assert crb.owner(105) is newer
        assert 105 not in crb.lpas_of(older)
        # No LPA is ever stored twice.
        all_lpas = crb.lpas_of(older) + crb.lpas_of(newer)
        assert len(all_lpas) == len(set(all_lpas))

    def test_remove_segment(self):
        crb = ConflictResolutionBuffer()
        seg = approx_segment(10, 5)
        crb.insert_segment(seg, [10, 12, 15])
        crb.remove_segment(seg)
        assert crb.owner(12) is None
        assert crb.size_bytes() == 0

    def test_retain_lpas_drops_outdated_entries(self):
        crb = ConflictResolutionBuffer()
        seg = approx_segment(10, 10)
        crb.insert_segment(seg, [10, 12, 15, 18, 20])
        crb.retain_lpas(seg, [12, 18])
        assert crb.lpas_of(seg) == [12, 18]
        assert crb.owner(10) is None
        assert crb.owner(12) is seg

    def test_retain_all_outdated_removes_entry(self):
        crb = ConflictResolutionBuffer()
        seg = approx_segment(10, 4)
        crb.insert_segment(seg, [10, 11])
        crb.retain_lpas(seg, [])
        assert not crb.contains_segment(seg)
        assert crb.size_bytes() == 0

    def test_same_start_lpa_segments_coexist(self):
        """Two approximate segments may start at the same LPA (identity keyed)."""
        crb = ConflictResolutionBuffer()
        older = approx_segment(100, 8)
        newer = approx_segment(100, 8, ppa=50)
        crb.insert_segment(older, [100, 104, 108])
        crb.insert_segment(newer, [100, 102])
        assert crb.owner(100) is newer
        assert crb.owner(104) is older
        assert crb.lpas_of(older) == [104, 108]

    def test_empty_insert_is_noop(self):
        crb = ConflictResolutionBuffer()
        seg = approx_segment(0, 3)
        crb.insert_segment(seg, [])
        assert crb.size_bytes() == 0
        assert not crb.contains_segment(seg)

    def test_clear(self):
        crb = ConflictResolutionBuffer()
        crb.insert_segment(approx_segment(0, 3), [0, 2])
        crb.clear()
        assert crb.size_bytes() == 0
        assert crb.owner(0) is None
