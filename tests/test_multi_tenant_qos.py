"""Acceptance tests for multi-tenant QoS isolation (the PR's headline claim).

The pinned result: under the noisy-neighbor scenario, weighted-round-robin
and strict-priority arbitration keep the latency-sensitive namespace's p99
(measured against arrival times, so submission-queue waiting counts) within
a small constant factor (<= 3x) of its solo-run p99 — while plain
shared-queue (FIFO) admission inflates it far beyond that.  Everything is
deterministic, so these are exact, repeatable comparisons.
"""

from __future__ import annotations

import pytest

from repro.experiments.multi_tenant import (
    NoisyNeighborScenario,
    noisy_neighbor_sweep,
    rate_limit_comparison,
)

#: The acceptance bound: QoS arbitration keeps the reader within this
#: factor of its solo p99; the shared-queue baseline must exceed it.
ISOLATION_FACTOR = 3.0


@pytest.fixture(scope="module")
def sweep():
    return noisy_neighbor_sweep(
        arbiters=("fifo", "weighted_round_robin", "strict_priority")
    )


class TestNoisyNeighborIsolation:
    def test_scenario_sanity(self, sweep):
        scenario = NoisyNeighborScenario()
        for arbiter in ("fifo", "weighted_round_robin", "strict_priority"):
            tenants = sweep[arbiter]
            assert tenants["reader"]["completed"] == scenario.reader_requests
            assert tenants["writer"]["completed"] == scenario.writer_requests
        assert sweep["solo"]["reader"]["completed"] == scenario.reader_requests
        # The baseline is meaningful: solo reads mostly hit flash, not DRAM.
        assert sweep["solo"]["reader"]["read_p99_us"] > 100.0

    def test_wrr_isolates_reader_tail(self, sweep):
        solo_p99 = sweep["solo"]["reader"]["read_p99_us"]
        contended = sweep["weighted_round_robin"]["reader"]["read_p99_us"]
        assert contended <= ISOLATION_FACTOR * solo_p99

    def test_strict_priority_isolates_reader_tail(self, sweep):
        solo_p99 = sweep["solo"]["reader"]["read_p99_us"]
        contended = sweep["strict_priority"]["reader"]["read_p99_us"]
        assert contended <= ISOLATION_FACTOR * solo_p99

    def test_shared_queue_does_not_isolate(self, sweep):
        """FIFO admission lets the writer's bursts wreck the reader's p99."""
        solo_p99 = sweep["solo"]["reader"]["read_p99_us"]
        fifo_p99 = sweep["fifo"]["reader"]["read_p99_us"]
        assert fifo_p99 > ISOLATION_FACTOR * solo_p99
        # And by a wide margin over the QoS arbiters, not a rounding hair.
        assert fifo_p99 > 2.0 * sweep["weighted_round_robin"]["reader"]["read_p99_us"]

    def test_slo_violations_track_isolation(self, sweep):
        """SLO accounting orders the arbiters the same way the tails do."""
        fifo = sweep["fifo"]["reader"]["slo_violations"]
        wrr = sweep["weighted_round_robin"]["reader"]["slo_violations"]
        strict = sweep["strict_priority"]["reader"]["slo_violations"]
        assert fifo > wrr >= 0
        assert fifo > strict >= 0

    def test_arbitration_is_work_conserving(self, sweep):
        """Isolation must not come from simply not running the writer."""
        scenario = NoisyNeighborScenario()
        for arbiter in ("weighted_round_robin", "strict_priority"):
            writer = sweep[arbiter]["writer"]
            assert writer["completed"] == scenario.writer_requests
            assert writer["write_pages"] > 0

    def test_sweep_is_deterministic(self, sweep):
        again = noisy_neighbor_sweep(arbiters=("fifo",))
        assert again["fifo"]["reader"] == sweep["fifo"]["reader"]
        assert again["solo"]["reader"] == sweep["solo"]["reader"]


class TestRateLimitQoS:
    def test_writer_cap_protects_reader(self):
        table = rate_limit_comparison()
        uncapped = table["uncapped"]
        capped = table["capped"]
        # The bucket visibly throttled the writer...
        assert capped["writer"]["rate_limit_deferrals"] > 0
        assert uncapped["writer"]["rate_limit_deferrals"] == 0
        # ...and the reader's tail got materially better for it.
        assert (
            capped["reader"]["read_p99_us"]
            < 0.5 * uncapped["reader"]["read_p99_us"]
        )
        # Throttling defers the writer, it does not drop its work.
        assert capped["writer"]["completed"] == uncapped["writer"]["completed"]
