"""Tests for the LeaFTL translation layer (outside the full SSD model)."""

from __future__ import annotations

import random

from repro.config import LeaFTLConfig
from repro.core.leaftl import LeaFTL
from repro.flash.oob import OOBArea


class TestLeaFTLTranslation:
    def test_basic_update_and_translate(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        ftl.update_batch([(lpa, 200 + lpa) for lpa in range(64)])
        for lpa in range(64):
            assert ftl.translate(lpa).ppa == 200 + lpa
        assert ftl.exists(10)
        assert not ftl.exists(1000)

    def test_gamma_zero_is_always_exact(self):
        rng = random.Random(1)
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        truth = {}
        ppa = 0
        for _ in range(50):
            lpas = sorted(set(rng.randrange(5000) for _ in range(rng.randint(1, 80))))
            batch = []
            for lpa in lpas:
                batch.append((lpa, ppa))
                truth[lpa] = ppa
                ppa += 1
            ftl.update_batch(batch)
        for lpa, expected in truth.items():
            assert ftl.translate(lpa).ppa == expected

    def test_memory_smaller_than_page_level_for_sequential(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        ftl.update_batch([(lpa, lpa) for lpa in range(4096)])
        assert ftl.resident_bytes() < 4096 * 8 / 10

    def test_oob_window_matches_gamma(self):
        assert LeaFTL(LeaFTLConfig(gamma=4)).oob_window() == 4
        assert LeaFTL(LeaFTLConfig(gamma=0)).oob_window() == 0

    def test_translate_levels_histogram(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        ftl.update_batch([(lpa, lpa) for lpa in range(64)])
        ftl.update_batch([(lpa, 100 + lpa) for lpa in range(10, 20)])
        ftl.translate(5)
        ftl.translate(40)
        assert sum(ftl.lea_stats.levels_histogram.values()) == 2


class TestMispredictionResolution:
    def test_resolve_through_oob(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=4))
        # The OOB of the (mispredicted) page holds the reverse mappings of
        # PPAs [predicted - 4, predicted + 4]; LPA 77 lives two slots left.
        oob = OOBArea(lpa=50, neighbor_lpas=[70, 71, 77, 49, 50, 51, 52, 53, 54])
        correct = ftl.resolve_misprediction(lpa=77, predicted_ppa=100, oob=oob)
        assert correct == 98
        assert ftl.lea_stats.mispredictions == 1
        assert ftl.lea_stats.oob_corrections == 1

    def test_resolution_failure_reported(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=2))
        oob = OOBArea(lpa=1, neighbor_lpas=[None, None, 1, 2, 3])
        assert ftl.resolve_misprediction(lpa=99, predicted_ppa=10, oob=oob) is None
        assert ftl.lea_stats.oob_correction_failures == 1


class TestCompactionPolicy:
    def test_compaction_triggered_by_interval(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0, compaction_interval_writes=100))
        for round_ in range(5):
            ftl.update_batch([(lpa, round_ * 1000 + lpa) for lpa in range(50)])
        assert ftl.lea_stats.compactions >= 2

    def test_manual_maintenance(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=0))
        ftl.update_batch([(lpa, lpa) for lpa in range(64)])
        ftl.update_batch([(lpa, 500 + lpa) for lpa in range(64)])
        ftl.maintenance()
        assert ftl.table.segment_count() == 1
        assert ftl.translate(5).ppa == 505

    def test_describe_reports_segment_counts(self):
        ftl = LeaFTL(LeaFTLConfig(gamma=4))
        ftl.update_batch([(lpa, lpa) for lpa in range(64)])
        info = ftl.describe()
        assert info["segments"] >= 1
        assert info["gamma"] == 4
        assert "crb_bytes" in info
