"""Frontend admission edge cases (single-queue and multi-queue).

Covers the corners trace replay must not mishandle:

* an empty trace (no events, no counters, clean return);
* a trace shorter than the queue depth (partial initial admission);
* open-loop replay of a trace with non-monotonic timestamps — the replay
  must raise (never silently reorder or distort the arrival process), and
  ``Trace.sorted_by_timestamp()`` must repair such a trace.
"""

from __future__ import annotations

import pytest

from repro.host.interface import HostInterface
from repro.sim.events import EventLoop
from repro.sim.frontend import HostFrontend, OpenLoopFrontend
from repro.workloads.trace import IORequest, Trace
from tests.conftest import make_ssd


class _RecordingDevice:
    def __init__(self, latency_us: float = 10.0):
        self.latency_us = latency_us
        self.issues = []

    def submit(self, op, lpa, npages, at_us):
        self.issues.append((at_us, op, lpa))
        return at_us + self.latency_us


class TestEmptyTrace:
    def test_closed_loop_frontend(self):
        device = _RecordingDevice()
        stats = HostFrontend(device, EventLoop(), queue_depth=4).run([])
        assert stats.submitted == stats.completed == 0
        assert stats.max_outstanding == 0
        assert device.issues == []

    def test_open_loop_frontend(self):
        device = _RecordingDevice()
        stats = OpenLoopFrontend(device, EventLoop()).run([])
        assert stats.submitted == stats.completed == 0
        assert device.issues == []

    def test_full_device_replay(self):
        ssd = make_ssd()
        stats = ssd.run([])
        assert stats.requests_submitted == 0
        assert stats.total_requests == 0

    def test_host_interface_with_one_empty_stream(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=4)
        host.add_namespace("a", size_pages=256)
        host.add_namespace("b", size_pages=256)
        result = host.run({"a": [], "b": [("W", 0, 4)]})
        assert result.namespaces["a"].completed == 0
        assert result.namespaces["b"].completed == 1


class TestShortTrace:
    def test_trace_shorter_than_queue_depth(self):
        device = _RecordingDevice()
        stats = HostFrontend(device, EventLoop(), queue_depth=8).run(
            [("R", lpa, 1) for lpa in range(3)]
        )
        assert stats.submitted == stats.completed == 3
        # All three admitted at t=0; the depth never actually fills.
        assert stats.max_outstanding == 3
        assert [t for t, _, _ in device.issues] == [0.0, 0.0, 0.0]

    def test_device_replay_shorter_than_depth(self):
        ssd = make_ssd()
        stats = ssd.run([("W", 0, 4), ("R", 0, 4)], queue_depth=16)
        assert stats.requests_submitted == 2
        assert stats.requests_completed == 2
        assert stats.max_outstanding_requests <= 2


def _unsorted_trace() -> Trace:
    return Trace(
        "unsorted",
        [
            IORequest("W", 0, 1, timestamp_us=50.0),
            IORequest("W", 8, 1, timestamp_us=20.0),
            IORequest("W", 16, 1, timestamp_us=30.0),
        ],
    )


class TestNonMonotonicTimestamps:
    def test_open_loop_frontend_raises(self):
        device = _RecordingDevice()
        frontend = OpenLoopFrontend(device, EventLoop())
        with pytest.raises(ValueError, match="non-decreasing"):
            frontend.run(_unsorted_trace())

    def test_device_open_replay_raises(self):
        ssd = make_ssd()
        with pytest.raises(ValueError, match="sorted_by_timestamp"):
            ssd.run(_unsorted_trace(), replay_mode="open")

    def test_multi_queue_open_replay_raises(self):
        ssd = make_ssd()
        host = HostInterface(ssd, queue_depth=2)
        host.add_namespace("t", size_pages=256)
        with pytest.raises(ValueError, match="non-monotonic"):
            host.run({"t": _unsorted_trace()})

    def test_sorted_by_timestamp_repairs_the_trace(self):
        trace = _unsorted_trace()
        assert not trace.timestamps_sorted()
        ordered = trace.sorted_by_timestamp()
        assert ordered.timestamps_sorted()
        assert [r.timestamp_us for r in ordered] == [20.0, 30.0, 50.0]
        # The repaired trace replays cleanly.
        ssd = make_ssd()
        stats = ssd.run(ordered, replay_mode="open")
        assert stats.requests_completed == 3

    def test_sort_is_stable_for_equal_timestamps(self):
        trace = Trace(
            "ties",
            [
                IORequest("W", 1, 1, timestamp_us=10.0),
                IORequest("W", 2, 1, timestamp_us=10.0),
                IORequest("W", 3, 1, timestamp_us=5.0),
            ],
        )
        ordered = trace.sorted_by_timestamp()
        assert [r.lpa for r in ordered] == [3, 1, 2]

    def test_equal_timestamps_are_legal(self):
        trace = Trace(
            "ties",
            [IORequest("W", lpa, 1, timestamp_us=0.0) for lpa in range(4)],
        )
        ssd = make_ssd()
        stats = ssd.run(trace, replay_mode="open")
        assert stats.requests_completed == 4
