"""LeaFTL core: learned segments, PLR, CRB, log-structured mapping table."""

from repro.core.crb import ConflictResolutionBuffer
from repro.core.group import GroupLookup, LPAGroup
from repro.core.leaftl import LeaFTL, LeaFTLStats
from repro.core.level import Level
from repro.core.mapping_table import (
    LogStructuredMappingTable,
    LookupResult,
    MappingTableStats,
)
from repro.core.plr import LearnedSegment, PLRLearner, learn_segments
from repro.core.segment import (
    GROUP_SIZE,
    SEGMENT_BYTES,
    Segment,
    group_base_of,
    group_id_of,
    quantize_slope,
    slope_is_accurate,
)

__all__ = [
    "ConflictResolutionBuffer",
    "GroupLookup",
    "LPAGroup",
    "LeaFTL",
    "LeaFTLStats",
    "Level",
    "LogStructuredMappingTable",
    "LookupResult",
    "MappingTableStats",
    "LearnedSegment",
    "PLRLearner",
    "learn_segments",
    "GROUP_SIZE",
    "SEGMENT_BYTES",
    "Segment",
    "group_base_of",
    "group_id_of",
    "quantize_slope",
    "slope_is_accurate",
]
