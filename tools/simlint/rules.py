"""The simlint rule set.

Each rule encodes one coding contract the simulator's determinism or
statistics correctness depends on.  Rules are heuristic AST checks — false
negatives are acceptable, false positives are suppressed inline with
``# simlint: disable=SIMxxx`` or scoped out in ``simlint.toml``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from tools.simlint.engine import FileContext, Finding, ImportMap, Rule, register

# --------------------------------------------------------------------------- #
# SIM001 — no wall-clock time inside the simulator
# --------------------------------------------------------------------------- #
#: Calls that read the host machine's clock.  Any of these inside the device
#: model couples simulated behaviour to wall time and breaks replayability.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class NoWallClock(Rule):
    code = "SIM001"
    name = "no-wall-clock"
    rationale = (
        "Simulator code must advance simulated time only (EventLoop.now_us / "
        "explicit at_us clocks); reading the host clock makes replay "
        "timing-dependent and unreproducible."
    )
    default_paths = (
        "src/repro/sim",
        "src/repro/ssd",
        "src/repro/host",
        "src/repro/flash",
        "src/repro/ftl",
        "src/repro/core",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield from self.emit(
                    ctx,
                    node,
                    f"wall-clock call {resolved}() in simulator code; "
                    "use simulated time (EventLoop.now_us / at_us) instead",
                )


# --------------------------------------------------------------------------- #
# SIM002 — randomness must be injected and seeded
# --------------------------------------------------------------------------- #
#: Constructors that are fine *when given a seed argument*.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

#: numpy.random names that are types/helpers, not the module-level RNG.
_NUMPY_RANDOM_SAFE = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)


@register
class SeededRandomOnly(Rule):
    code = "SIM002"
    name = "seeded-random-only"
    rationale = (
        "Randomness must flow through an injected, explicitly seeded "
        "random.Random (or numpy Generator): the module-level API draws from "
        "shared hidden state, so results depend on import order and on every "
        "other caller."
    )
    default_paths = ("src/repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield from self.emit(
                        ctx,
                        node,
                        f"{resolved}() without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
                continue
            if resolved in _NUMPY_RANDOM_SAFE or resolved == "random.SystemRandom":
                continue
            if resolved.startswith("random.") and resolved.count(".") == 1:
                yield from self.emit(
                    ctx,
                    node,
                    f"module-level {resolved}() uses the shared global RNG; "
                    "thread a seeded random.Random instance through instead",
                )
            elif resolved.startswith("numpy.random."):
                yield from self.emit(
                    ctx,
                    node,
                    f"module-level {resolved}() uses numpy's global RNG; "
                    "use an injected numpy.random.default_rng(seed) Generator",
                )


# --------------------------------------------------------------------------- #
# SIM003 — no iteration over unordered sets where order feeds behaviour
# --------------------------------------------------------------------------- #
#: Builtins whose result depends on the iteration order of their argument.
#: ``sorted`` is excluded on purpose: it imposes a total order (ties in a
#: ``key=`` remain order-dependent, but that is the caller's explicit
#: contract to get right).  ``sum``/``min``/``max`` are included: float sums
#: are order-sensitive and min/max tie-break by first occurrence.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "min", "max", "sum", "next"}
)

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_ANNOTATIONS = frozenset({"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"})
_CONTAINER_ANNOTATIONS = frozenset(
    {"list", "List", "dict", "Dict", "tuple", "Tuple", "Sequence", "Mapping",
     "defaultdict", "DefaultDict", "Optional"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _annotation_kind(node: Optional[ast.AST]) -> Optional[str]:
    """Classify an annotation: ``"set"``, ``"container_of_set"`` or None.

    ``Set[int]`` is a set; ``List[Set[int]]`` / ``Dict[str, Set[int]]`` are
    containers whose *elements/values* are sets (indexing them yields a
    set); anything else is unknown.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return "set" if node.id in _SET_ANNOTATIONS else None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name in _SET_ANNOTATIONS:
            return "set"
        if base_name in _CONTAINER_ANNOTATIONS:
            args = node.slice
            elements = args.elts if isinstance(args, ast.Tuple) else [args]
            # The element (last type parameter: List[T] -> T, Dict[K, V] -> V)
            # determines what a subscript access yields.
            if elements and _annotation_kind(elements[-1]) == "set":
                return "container_of_set"
    return None


class _SetSymbols(ast.NodeVisitor):
    """Collects symbols known (heuristically) to hold sets.

    Tracked symbols are simple names (``free``) and self-attributes
    (``self._active_blocks``), keyed per enclosing function so locals of
    different functions do not alias.  Sources of set-ness:

    * assignment from a set literal / comprehension / ``set()`` /
      ``frozenset()`` call;
    * an annotation (``x: Set[int]``, ``self.y: List[Set[int]] = ...``);
    * ``dict.fromkeys(<set>)`` — the dict inherits the set's order.
    """

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        self.sets: Set[Tuple[str, str]] = set()
        self.containers: Set[Tuple[str, str]] = set()
        self._scope: List[str] = ["<module>"]

    # -- scope bookkeeping ------------------------------------------------ #
    def _key(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Name):
            return (self._scope[-1], node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            # self attributes live at class scope: visible from any method.
            return ("self", node.attr)
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- classification --------------------------------------------------- #
    def _value_is_set(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in _SET_CONSTRUCTORS:
                return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            # set-producing methods on a known set: a.union(b), a.copy(), ...
            inner = self._key(value.func.value)
            if inner in self.sets and value.func.attr in _SET_METHODS:
                return True
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._value_is_set(value.left) or self._value_is_set(value.right)
        if isinstance(value, ast.Subscript):
            # Indexing a container-of-sets (List[Set[int]], Dict[K, Set[V]])
            # yields a set: `pool = self._free_blocks[ch]`.
            return self._key(value.value) in self.containers
        key = self._key(value)
        return key in self.sets

    def _record(self, target: ast.AST, kind: Optional[str]) -> None:
        key = self._key(target)
        if key is None or kind is None:
            return
        if kind == "set":
            self.sets.add(key)
        elif kind == "container_of_set":
            self.containers.add(key)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node.target, _annotation_kind(node.annotation))
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and _annotation_kind(node.annotation) == "set":
            self.sets.add((self._scope[-1], node.arg))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        kind: Optional[str] = None
        if self._value_is_set(value):
            kind = "set"
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "fromkeys"
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "dict"
            and value.args
            and self._value_is_set(value.args[0])
        ):
            # dict.fromkeys(a_set): the dict's order is the set's order.
            kind = "set"
        for target in node.targets:
            self._record(target, kind)
        self.generic_visit(node)


@register
class NoSetIteration(Rule):
    code = "SIM003"
    name = "no-set-iteration"
    rationale = (
        "Iterating a set (or anything derived from one) in scheduling, "
        "allocation, arbitration or GC-victim selection feeds hash-table "
        "layout into simulated behaviour; use insertion-ordered structures "
        "(dict keys, lists) or an explicit total order."
    )
    default_paths = (
        "src/repro/flash/allocator.py",
        "src/repro/sim",
        "src/repro/ssd/gc.py",
        "src/repro/ssd/ssd.py",
        "src/repro/ssd/wear_leveling.py",
        "src/repro/host/arbiter.py",
        "src/repro/host/interface.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        symbols = _SetSymbols(imports)
        symbols.visit(ctx.tree)

        scope_stack: List[str] = ["<module>"]

        def is_set_expr(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _SET_CONSTRUCTORS:
                    return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                inner = key_of(node.func.value)
                if inner in symbols.sets and node.func.attr in (
                    _SET_METHODS | {"keys"}
                ):
                    return True
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                return is_set_expr(node.left) or is_set_expr(node.right)
            if isinstance(node, ast.Subscript):
                base = key_of(node.value)
                if base in symbols.containers:
                    return True
            return key_of(node) in symbols.sets

        def key_of(node: ast.AST) -> Optional[Tuple[str, str]]:
            known = symbols.sets | symbols.containers
            if isinstance(node, ast.Name):
                # Prefer the enclosing function's binding; fall back to a
                # module-level one (closures/globals referenced from methods).
                for candidate in ((scope_stack[-1], node.id), ("<module>", node.id)):
                    if candidate in known:
                        return candidate
                return (scope_stack[-1], node.id)
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return ("self", node.attr)
            return None

        findings: List[Finding] = []

        def describe(node: ast.AST) -> str:
            try:
                return ast.unparse(node)
            except Exception:  # pragma: no cover - defensive
                return "<expr>"

        def flag(node: ast.AST, how: str) -> None:
            findings.extend(
                self.emit(
                    ctx,
                    node,
                    f"{how} iterates unordered set {describe(node)!r}; order "
                    "feeds simulated behaviour — use an insertion-ordered "
                    "structure or an explicit total order",
                )
            )

        def walk(node: ast.AST) -> None:
            pushed = False
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope_stack.append(node.name)
                pushed = True
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                flag(node.iter, "for loop")
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        flag(comp.iter, "comprehension")
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CALLS
                and node.args
                and is_set_expr(node.args[0])
            ):
                flag(node.args[0], f"{node.func.id}()")
            for child in ast.iter_child_nodes(node):
                walk(child)
            if pushed:
                scope_stack.pop()

        walk(ctx.tree)
        yield from iter(findings)


# --------------------------------------------------------------------------- #
# SIM004 — no float-timestamp equality
# --------------------------------------------------------------------------- #
def _timestamp_name(node: ast.AST) -> Optional[str]:
    """The identifier of a timestamp-like expression (``*_us`` / ``*_s``)."""
    if isinstance(node, ast.Name):
        ident: Optional[str] = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.Call):
        return _timestamp_name(node.func)
    else:
        return None
    if ident and (ident.endswith("_us") or ident.endswith("_s")):
        return ident
    return None


@register
class NoFloatTimestampEquality(Rule):
    code = "SIM004"
    name = "no-float-timestamp-equality"
    rationale = (
        "Timestamps are floats accumulated through arithmetic; exact ==/!= "
        "on them is representation-dependent.  Compare integer ticks, use "
        "ordering comparisons, or an explicit epsilon helper."
    )
    default_paths = ("src/repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = comparators[index], comparators[index + 1]
                # `x_us == None` style is SIM-irrelevant (and a bug anyway).
                if any(
                    isinstance(side, ast.Constant) and side.value is None
                    for side in (left, right)
                ):
                    continue
                name = _timestamp_name(left) or _timestamp_name(right)
                if name is not None:
                    operator = "==" if isinstance(op, ast.Eq) else "!="
                    yield from self.emit(
                        ctx,
                        node,
                        f"float timestamp {name!r} compared with {operator}; "
                        "use integer ticks, ordering, or an epsilon helper",
                    )


# --------------------------------------------------------------------------- #
# SIM005 — no mutable default arguments
# --------------------------------------------------------------------------- #
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


@register
class NoMutableDefaults(Rule):
    code = "SIM005"
    name = "no-mutable-defaults"
    rationale = (
        "A mutable default is created once at definition time and shared by "
        "every call — state leaks across requests/replays and breaks "
        "run-to-run reproducibility."
    )
    default_paths = ("src", "tools")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)

        def is_mutable(default: ast.AST) -> bool:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                return True
            if isinstance(default, ast.Call):
                if isinstance(default.func, ast.Name) and default.func.id in _MUTABLE_CALLS:
                    return True
                resolved = imports.resolve(default.func)
                if resolved in _MUTABLE_CALLS:
                    return True
            return False

        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if is_mutable(default):
                    yield from self.emit(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and create inside the function",
                    )


# --------------------------------------------------------------------------- #
# SIM006 — stats counters are += monotone
# --------------------------------------------------------------------------- #
def _counter_fields(tree: ast.Module) -> Set[str]:
    """Counter field names declared by ``*Stats`` classes in this module.

    A counter is a class-level ``name: int = 0`` / ``name: float = 0.0``
    annotation (dataclass style) or a ``self.name = 0`` in ``__init__``.
    """
    counters: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Stats"):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.annotation, ast.Name)
                and stmt.annotation.id in ("int", "float")
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value in (0, 0.0)
            ):
                counters.add(stmt.target.id)
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == "self"
                        and isinstance(sub.value, ast.Constant)
                        and sub.value.value in (0, 0.0)
                    ):
                        counters.add(sub.targets[0].attr)
    return counters


def _allowed_writer(name: str) -> bool:
    return name == "__init__" or name.startswith("reset")


@register
class MonotoneStatsCounters(Rule):
    code = "SIM006"
    name = "monotone-stats-counters"
    rationale = (
        "Statistics counters feed summary/merge semantics (and the future "
        "fleet merger sums them across devices): writes must be += "
        "increments so merging stays additive.  Raw reassignment belongs "
        "only in __init__/reset()."
    )
    default_paths = (
        "src/repro/ssd/stats.py",
        "src/repro/host/namespace.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        counters = _counter_fields(ctx.tree)
        if not counters:
            return

        def walk(node: ast.AST, func: Optional[str]) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                child_func = func
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_func = child.name
                if func is not None and not _allowed_writer(func):
                    if isinstance(child, ast.Assign):
                        for target in child.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and target.attr in counters
                            ):
                                yield from self.emit(
                                    ctx,
                                    child,
                                    f"raw reassignment of stats counter "
                                    f"{target.attr!r} outside __init__/reset; "
                                    "counters must stay += monotone for merge "
                                    "semantics",
                                )
                    elif isinstance(child, ast.AugAssign) and not isinstance(
                        child.op, ast.Add
                    ):
                        target = child.target
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr in counters
                        ):
                            yield from self.emit(
                                ctx,
                                child,
                                f"non-additive update of stats counter "
                                f"{target.attr!r}; counters must stay += "
                                "monotone for merge semantics",
                            )
                yield from walk(child, child_func)

        yield from walk(ctx.tree, None)


# --------------------------------------------------------------------------- #
# SIM007 — every *Stats counter must be reachable from the counter registry
# --------------------------------------------------------------------------- #
def _registry_tables(start: "Path") -> Tuple[Set[str], Set[Tuple[str, str]]]:
    """Parse ``REGISTERED_STATS`` / ``EXCLUDED_FIELDS`` out of the registry.

    The registry module (``src/repro/obs/registry.py``) keeps both tables
    as pure literals precisely so this rule can read them statically.  The
    file is located by walking up from the linted file to the directory
    containing ``src``; results are cached per registry path.
    """
    registry_path: Optional[Path] = None
    probe = start.resolve()
    for parent in (probe, *probe.parents):
        candidate = parent / "src" / "repro" / "obs" / "registry.py"
        if candidate.is_file():
            registry_path = candidate
            break
    if registry_path is None:
        return set(), set()
    cached = _REGISTRY_CACHE.get(registry_path)
    if cached is not None:
        return cached
    registered: Set[str] = set()
    excluded: Set[Tuple[str, str]] = set()
    tree = ast.parse(registry_path.read_text(encoding="utf-8"))
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and isinstance(node.value, ast.Dict)):
            continue
        if target.id == "REGISTERED_STATS":
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    registered.add(key.value)
        elif target.id == "EXCLUDED_FIELDS":
            for key in node.value.keys:
                if (
                    isinstance(key, ast.Tuple)
                    and len(key.elts) == 2
                    and all(
                        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                        for elt in key.elts
                    )
                ):
                    excluded.add((key.elts[0].value, key.elts[1].value))
    _REGISTRY_CACHE[registry_path] = (registered, excluded)
    return registered, excluded


_REGISTRY_CACHE: dict = {}

#: Field annotations the registry walks natively (see ``snapshot_stats``):
#: plain numerics plus the LatencyRecorder expansion.
_REGISTRY_EXPORTABLE_ANNOTATIONS = frozenset(
    {"int", "float", "bool", "LatencyRecorder"}
)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


@register
class RegistryCoverage(Rule):
    code = "SIM007"
    name = "registry-coverage"
    rationale = (
        "Every *Stats dataclass counter must be reachable from the counter "
        "registry (repro.obs.registry), or it silently misses every export "
        "— the way checkpoint_page_writes shipped a whole PR without "
        "appearing in any report.  Register the class in REGISTERED_STATS; "
        "non-numeric fields need an EXCLUDED_FIELDS entry naming what "
        "covers them."
    )
    default_paths = ("src/repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        registered, excluded = _registry_tables(Path(ctx.path).parent)
        if not registered:
            # No registry found (e.g. linting a partial checkout): nothing
            # to enforce against.
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Stats")
                and _is_dataclass_decorated(node)
            ):
                continue
            if node.name not in registered:
                yield from self.emit(
                    ctx,
                    node,
                    f"stats dataclass {node.name!r} is not in "
                    "repro.obs.registry.REGISTERED_STATS; its counters are "
                    "invisible to every registry-based export",
                )
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                field_name = stmt.target.id
                if (node.name, field_name) in excluded:
                    continue
                annotation = stmt.annotation
                ann_name = ""
                if isinstance(annotation, ast.Name):
                    ann_name = annotation.id
                elif isinstance(annotation, ast.Constant) and isinstance(
                    annotation.value, str
                ):
                    ann_name = annotation.value
                if ann_name not in _REGISTRY_EXPORTABLE_ANNOTATIONS:
                    yield from self.emit(
                        ctx,
                        stmt,
                        f"field {node.name}.{field_name} "
                        f"({ast.unparse(annotation)}) is not "
                        "registry-exportable; make it numeric or add an "
                        "EXCLUDED_FIELDS entry explaining what covers it",
                    )


# --------------------------------------------------------------------------- #
# SIM008 — observer purity in the telemetry layer
# --------------------------------------------------------------------------- #
#: Method names that drive or mutate the simulation.  Deliberately short
#: and high-confidence: the generic attribute-assignment check catches
#: arbitrary state writes, so this set only needs the sanctioned entry
#: points an observer could be tempted to call.  ``write``/``read`` are
#: absent (file handles), as are ``append``/``pop``/``update`` (an
#: observer's own collections).
_SIM008_MUTATORS = frozenset(
    {
        "submit",
        "power_fail",
        "erase",
        "erase_block",
        "program",
        "program_run",
        "recover",
        "run",
        "run_frontend",
        "flush",
        "begin_measurement",
        "quiesce",
        "maybe_start",
        "drain",
        "discard",
    }
)


@register
class ObserverPurity(Rule):
    code = "SIM008"
    name = "observer-purity"
    rationale = (
        "Telemetry must observe, never steer: code under src/repro/obs "
        "runs inside the event loop's observer fan-out, so a stray "
        "attribute write or a call into a simulation entry point would "
        "perturb scheduling and break the digests-identical guarantee.  "
        "Observers may only assign to self; driving the sim belongs in "
        "scenario drivers with an explicit disable."
    )
    default_paths = ("src/repro/obs",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: list = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif node.value is not None:
                    targets = [node.target]
                for target in targets:
                    # Tuple targets: `a.x, b = ...` unpacks into elements.
                    elements = (
                        list(target.elts)
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        if not isinstance(element, ast.Attribute):
                            continue
                        base = element.value
                        # `self.anything = ...` (but not `self.x.y = ...`)
                        # is the observer's own state; everything else is
                        # foreign.
                        if isinstance(base, ast.Name) and base.id == "self":
                            continue
                        yield from self.emit(
                            ctx,
                            node,
                            f"observer assigns to foreign attribute "
                            f"{ast.unparse(element)!r}; telemetry may only "
                            "mutate self",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SIM008_MUTATORS
                ):
                    yield from self.emit(
                        ctx,
                        node,
                        f"observer calls simulation mutator "
                        f"{ast.unparse(func)!r}; telemetry must not drive "
                        "the sim",
                    )
