"""Table 2: real-SSD workloads (database / filesystem benchmarks).

Generates each database-style workload and prints its composition next to
the paper's description, benchmarking the generation cost.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_table
from repro.workloads.database import (
    DATABASE_WORKLOAD_DESCRIPTIONS,
    DATABASE_WORKLOAD_NAMES,
    database_workload,
)

from benchmarks.conftest import run_once


def test_table2_database_workloads(benchmark):
    def generate_all():
        return {name: database_workload(name, request_scale=0.1)
                for name in DATABASE_WORKLOAD_NAMES}

    traces = run_once(benchmark, generate_all)

    rows = []
    for name, trace in traces.items():
        rows.append([
            name,
            DATABASE_WORKLOAD_DESCRIPTIONS[name],
            len(trace),
            f"{trace.read_ratio:.2f}",
            trace.footprint_pages(),
        ])
    print_report(render_table(
        ["workload", "description (Table 2)", "requests", "read ratio", "footprint (pages)"],
        rows, title="Table 2: real-SSD workloads"))
    assert set(traces) == set(DATABASE_WORKLOAD_NAMES)
