"""Plain-text report formatting for the benchmark harness.

Every benchmark prints the rows/series of its paper figure through these
helpers so the output of ``pytest benchmarks/ --benchmark-only`` can be read
side by side with the paper.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with aligned columns."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_series(
    title: str, series: Mapping[str, Mapping[str, Number]], column_order: Optional[Sequence[str]] = None
) -> str:
    """Render a dict-of-dicts (row label -> column label -> value) as a table."""
    columns: List[str] = list(column_order) if column_order else []
    if not columns:
        seen = []
        for row in series.values():
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    headers = [""] + list(columns)
    rows = [[label] + [row.get(col, "") for col in columns] for label, row in series.items()]
    return render_table(headers, rows, title=title)


def print_report(text: str) -> None:
    """Print a report block surrounded by blank lines (pytest -s friendly)."""
    print("\n" + text + "\n")
