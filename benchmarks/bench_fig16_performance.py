"""Figure 16: normalized performance under two DRAM budget policies.

(a) the DRAM is used for the mapping table as much as possible;
(b) at least 20% of the DRAM is reserved for the data cache.

The paper reports LeaFTL improving storage performance by 1.6x (up to 2.7x)
over SFTL in (a) and 1.4x / 1.6x over SFTL / DFTL in (b).  Lower normalized
latency is better; DFTL = 1.0.

Replay is closed-loop by default; set ``REPRO_REPLAY_MODE=open`` to admit
requests at (stamped) trace timestamps instead, measuring latency against
arrival times (see ``benchmarks/conftest.perf_setup``).  Multi-page
commands are translated in batched ``FTL.translate_range`` runs and
striped across channels either way.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import normalized_performance

from benchmarks.conftest import CORE_SIMULATOR_WORKLOADS, perf_setup, run_once


@pytest.mark.parametrize("policy", ["mapping_first", "cache_reserved"])
def test_fig16_normalized_performance(benchmark, policy):
    setup = perf_setup(dram_policy=policy)
    table = run_once(benchmark, normalized_performance, CORE_SIMULATOR_WORKLOADS, setup)

    label = "(a) DRAM mostly for mapping" if policy == "mapping_first" else "(b) 20% reserved for cache"
    print_report(render_series(
        f"Figure 16{label}: normalized read latency (lower is better, DFTL = 1.0)",
        {wl: {s: round(v, 3) for s, v in row.items()} for wl, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))

    # Shape: LeaFTL is never slower than DFTL, and is the fastest on average.
    leaftl_mean = sum(row["LeaFTL"] for row in table.values()) / len(table)
    sftl_mean = sum(row["SFTL"] for row in table.values()) / len(table)
    assert leaftl_mean < 1.0
    assert leaftl_mean <= sftl_mean + 0.05
