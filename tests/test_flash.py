"""Tests for the flash substrate: geometry, array state machine, allocator, OOB."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SSDConfig
from repro.flash.allocator import BlockAllocator, OutOfSpaceError
from repro.flash.flash_array import FlashArray, FlashError, PageState
from repro.flash.geometry import FlashGeometry
from repro.flash.oob import (
    OOBArea,
    max_neighbor_entries,
    required_oob_bytes,
    validate_gamma_fits_oob,
)


@pytest.fixture
def config():
    return SSDConfig.tiny()


@pytest.fixture
def flash(config):
    return FlashArray(config)


class TestGeometry:
    def test_round_trip(self, config):
        geo = FlashGeometry(config)
        for ppa in (0, 1, 255, 256, geo.total_pages - 1):
            addr = geo.decompose(ppa)
            block_in_channel = addr.block % geo.blocks_per_channel
            assert geo.compose(addr.channel, block_in_channel, addr.page) == ppa

    @given(st.integers(min_value=0))
    @settings(max_examples=100)
    def test_decompose_within_bounds(self, ppa_seed):
        geo = FlashGeometry(SSDConfig.tiny())
        ppa = ppa_seed % geo.total_pages
        addr = geo.decompose(ppa)
        assert 0 <= addr.channel < geo.channels
        assert 0 <= addr.block < geo.total_blocks
        assert 0 <= addr.page < geo.pages_per_block

    def test_block_pages_are_contiguous(self, config):
        geo = FlashGeometry(config)
        ppas = list(geo.ppas_of_block(3))
        assert len(ppas) == geo.pages_per_block
        assert ppas == list(range(ppas[0], ppas[0] + geo.pages_per_block))

    def test_out_of_range_rejected(self, config):
        geo = FlashGeometry(config)
        with pytest.raises(ValueError):
            geo.decompose(geo.total_pages)
        with pytest.raises(ValueError):
            geo.first_ppa_of_block(geo.total_blocks)


class TestFlashArray:
    def test_program_then_read(self, flash):
        finish = flash.program_page(0, lpa=42, now_us=0.0)
        assert finish == pytest.approx(flash.config.write_latency_us / flash.config.dies_per_channel)
        assert flash.page_state(0) is PageState.VALID
        assert flash.lpa_of(0) == 42
        flash.read_page(0)
        assert flash.counters.page_reads == 1

    def test_read_of_unwritten_page_rejected(self, flash):
        with pytest.raises(FlashError):
            flash.read_page(0)

    def test_out_of_place_constraint(self, flash):
        flash.program_page(0, lpa=1)
        with pytest.raises(FlashError):
            flash.program_page(0, lpa=2)

    def test_in_order_programming_within_block(self, flash):
        flash.program_page(0, lpa=1)
        with pytest.raises(FlashError):
            flash.program_page(2, lpa=3)  # skips page offset 1

    def test_invalidate_and_erase(self, flash):
        for offset in range(4):
            flash.program_page(offset, lpa=offset)
        assert flash.valid_page_count(0) == 4
        with pytest.raises(FlashError):
            flash.erase_block(0)  # still has valid pages
        for offset in range(4):
            flash.invalidate_page(offset)
        flash.erase_block(0)
        assert flash.erase_count(0) == 1
        assert flash.page_state(0) is PageState.FREE
        # After erase the block can be programmed again from offset 0.
        flash.program_page(0, lpa=9)

    def test_double_invalidate_rejected(self, flash):
        flash.program_page(0, lpa=1)
        flash.invalidate_page(0)
        with pytest.raises(FlashError):
            flash.invalidate_page(0)

    def test_oob_round_trip(self, flash):
        oob = OOBArea(lpa=5, neighbor_lpas=[None, 5, 6])
        flash.program_page(0, lpa=5, oob=oob)
        stored = flash.oob_of(0)
        assert stored.lpa == 5
        assert stored.neighbor_lpas == [None, 5, 6]

    def test_channel_occupancy_serializes_reads(self, flash):
        flash.program_page(0, lpa=0)
        first = flash.read_page(0, now_us=0.0)
        second = flash.read_page(0, now_us=0.0)
        assert second > first  # the same channel cannot overlap two reads

    def test_valid_ppas_of_block(self, flash):
        for offset in range(6):
            flash.program_page(offset, lpa=offset)
        flash.invalidate_page(2)
        assert flash.valid_ppas_of_block(0) == [0, 1, 3, 4, 5]


class TestAllocator:
    def test_allocation_rotates_channels(self, flash):
        allocator = BlockAllocator(flash)
        channels = {
            flash.geometry.block_to_channel(allocator.allocate_block())
            for _ in range(flash.config.channels)
        }
        assert len(channels) == flash.config.channels

    def test_gc_candidates_exclude_active_and_free(self, flash):
        allocator = BlockAllocator(flash)
        block = allocator.allocate_block()
        first_ppa = flash.geometry.first_ppa_of_block(block)
        flash.program_page(first_ppa, lpa=0)
        assert block not in allocator.gc_candidates()  # still active
        allocator.seal_block(block)
        assert block in allocator.gc_candidates()

    def test_release_requires_erased_block(self, flash):
        allocator = BlockAllocator(flash)
        block = allocator.allocate_block()
        first_ppa = flash.geometry.first_ppa_of_block(block)
        flash.program_page(first_ppa, lpa=0)
        allocator.seal_block(block)
        with pytest.raises(ValueError):
            allocator.release_block(block)

    def test_exhaustion_raises(self, flash):
        allocator = BlockAllocator(flash)
        for _ in range(allocator.total_blocks):
            allocator.allocate_block()
        with pytest.raises(OutOfSpaceError):
            allocator.allocate_block()

    def test_free_ratio_accounting(self, flash):
        allocator = BlockAllocator(flash)
        assert allocator.free_ratio() == pytest.approx(1.0)
        allocator.allocate_block()
        assert allocator.free_ratio() < 1.0


class TestOOBHelpers:
    def test_required_bytes(self):
        # The page's own reverse mapping (1 entry) plus 2*gamma neighbours.
        assert required_oob_bytes(0) == 4
        assert required_oob_bytes(4) == 36
        assert required_oob_bytes(15) == 124
        assert required_oob_bytes(16) == 132

    def test_max_entries(self):
        assert max_neighbor_entries(128) == 32

    def test_gamma_must_fit(self):
        validate_gamma_fits_oob(4, 128)
        with pytest.raises(ValueError):
            validate_gamma_fits_oob(16, 64)

    def test_gamma_boundary_at_128_bytes(self):
        # gamma=15 needs exactly 124 bytes and fits a 128-byte spare area;
        # gamma=16 needs 132 bytes (33 entries) and requires 256 bytes.
        validate_gamma_fits_oob(15, 128)
        with pytest.raises(ValueError):
            validate_gamma_fits_oob(16, 128)
        validate_gamma_fits_oob(16, 256)


class TestOOBParity:
    """Lazy (gamma=0, synthesized) vs stored (gamma>0) OOB equivalence.

    The recovery scan reads each programmed page's own reverse mapping
    through ``oob_of()``; these tests pin that the synthesized and stored
    representations agree on that field through the page lifecycle.
    """

    def _program_pattern(self, flash, gamma):
        """Program a small overwrite-heavy pattern; returns lpa-by-ppa."""
        lpas = [3, 7, 7, 1, 5, 3]
        expected = {}
        for ppa, lpa in enumerate(lpas):
            old = None
            for prev_ppa, prev_lpa in expected.items():
                if prev_lpa == lpa and flash.page_state(prev_ppa) is PageState.VALID:
                    old = prev_ppa
            flash.program_run(ppa, [lpa], [old], gamma, {ppa: lpa}, 0.0)
            expected[ppa] = lpa
        return expected

    @pytest.mark.parametrize("gamma", [0, 2])
    def test_own_lpa_after_program(self, config, gamma):
        flash = FlashArray(config)
        expected = self._program_pattern(flash, gamma)
        for ppa, lpa in expected.items():
            oob = flash.oob_of(ppa)
            assert oob is not None
            assert oob.lpa == lpa

    @pytest.mark.parametrize("gamma", [0, 2])
    def test_own_lpa_survives_invalidate(self, config, gamma):
        # Invalidation marks the page dead but keeps the reverse mapping —
        # the recovery scan must still see who the page belonged to.
        flash = FlashArray(config)
        expected = self._program_pattern(flash, gamma)
        for ppa in expected:
            if flash.page_state(ppa) is PageState.VALID:
                flash.invalidate_page(ppa)
        for ppa, lpa in expected.items():
            oob = flash.oob_of(ppa)
            assert oob is not None
            assert oob.lpa == lpa

    @pytest.mark.parametrize("gamma", [0, 2])
    def test_erase_clears_oob(self, config, gamma):
        # Erase is the one OOB-invalidation story: stored areas are popped
        # wholesale and the synthesized view returns None alike.
        flash = FlashArray(config)
        expected = self._program_pattern(flash, gamma)
        for ppa in expected:
            if flash.page_state(ppa) is PageState.VALID:
                flash.invalidate_page(ppa)
        flash.erase_block(0)
        for ppa in expected:
            assert flash.oob_of(ppa) is None
