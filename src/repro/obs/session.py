"""Telemetry session: configuration, attachment and artifact export.

One :class:`Telemetry` object owns whatever collectors a run enables —
a :class:`~repro.obs.tracing.Tracer`, a
:class:`~repro.obs.metrics.MetricsSampler`, or both — and presents the
single surface the device model talks to.  The device holds at most one
``telemetry`` reference and guards every hook with ``is not None``, so the
disabled path costs exactly the existing observer-is-None style check and
nothing else.

Modes (:data:`TELEMETRY_MODES`):

``"off"``
    No collectors; :func:`attach_telemetry` leaves ``ssd.telemetry`` None.
``"trace"``
    Tracer only (lifecycle spans + NAND probe).
``"metrics"``
    Sampler only (gauge time-series).
``"on"``
    Both.

Attachment installs the NAND probe when tracing is enabled and re-arms
itself across :meth:`~repro.ssd.ssd.SimulatedSSD.run_frontend` calls via
the device's ``chain_observer`` wiring — the telemetry observer composes
with a :class:`~repro.ssd.recovery.CrashTimer` or any other observer
rather than displacing it.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, Optional

from repro.obs.metrics import DEFAULT_METRICS_INTERVAL_US, MetricsSampler
from repro.obs.registry import device_snapshot
from repro.obs.tracing import DEFAULT_TRACE_CAPACITY, Tracer
from repro.sim.events import Event

#: Accepted values of ``SSDOptions.telemetry`` / ``ExperimentSetup.telemetry``.
TELEMETRY_MODES = ("off", "trace", "metrics", "on")


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """What to collect and how much memory to spend on it."""

    mode: str = "off"
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    metrics_interval_us: float = DEFAULT_METRICS_INTERVAL_US

    def __post_init__(self) -> None:
        if self.mode not in TELEMETRY_MODES:
            raise ValueError(f"telemetry mode must be one of {TELEMETRY_MODES}")

    @classmethod
    def coerce(cls, value: Any) -> "TelemetryConfig":
        """Accept a mode string or an existing config."""
        if isinstance(value, TelemetryConfig):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(f"telemetry must be a mode string or TelemetryConfig, got {value!r}")

    @property
    def tracing(self) -> bool:
        return self.mode in ("trace", "on")

    @property
    def metrics(self) -> bool:
        return self.mode in ("metrics", "on")


class Telemetry:
    """The per-device telemetry session the SSD model calls into."""

    def __init__(
        self,
        ssd: Any,
        config: TelemetryConfig,
        host: Any = None,
    ) -> None:
        self.config = config
        self._ssd = ssd
        self._host = host
        self.tracer: Optional[Tracer] = (
            Tracer(capacity=config.trace_capacity) if config.tracing else None
        )
        self.sampler: Optional[MetricsSampler] = (
            MetricsSampler(ssd, host=host, interval_us=config.metrics_interval_us)
            if config.metrics
            else None
        )
        if self.tracer is not None:
            # Attachment is the one sanctioned mutation: installing the
            # read-only NAND probe on the scheduler.
            ssd.scheduler.probe = self.tracer.nand_op  # simlint: disable=SIM008

    # ------------------------------------------------------------------ #
    # Hooks called by the device model (each guarded by `is not None`)
    # ------------------------------------------------------------------ #
    def observe(self, event: Event) -> None:
        """Event-loop observer fanning out to the enabled collectors."""
        if self.tracer is not None:
            self.tracer.observe(event)
        if self.sampler is not None:
            self.sampler.observe(event)

    def pump(self, now_us: float) -> None:
        """Clock tick from loop-less paths (serial engine flushes)."""
        if self.sampler is not None:
            self.sampler.pump(now_us)

    def note_translation(
        self, start_us: float, finish_us: float, reads: int, writes: int, foreground: bool
    ) -> None:
        if self.tracer is not None:
            self.tracer.note_translation(start_us, finish_us, reads, writes, foreground)

    def note_checkpoint(self, start_us: float, finish_us: float, pages: int) -> None:
        if self.tracer is not None:
            self.tracer.note_checkpoint(start_us, finish_us, pages)

    @property
    def wants_breakdowns(self) -> bool:
        """Whether the device should compute critical-path breakdowns.

        Only meaningful while a tracer records request spans — there is
        nothing to attach a breakdown to otherwise, so the device skips
        the accounting entirely.
        """
        return self.tracer is not None

    def note_request_breakdown(
        self, components: Dict[str, float], total_us: float
    ) -> None:
        if self.tracer is not None:
            self.tracer.note_request_breakdown(components, total_us)

    def note_recovery(
        self,
        name: str,
        start_us: float,
        finish_us: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.tracer is not None:
            self.tracer.note_recovery(name, start_us, finish_us, args)

    def finalize(self, now_us: float) -> None:
        """End-of-run: close the metrics series at the final sim time."""
        if self.sampler is not None:
            self.sampler.finalize(now_us)

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #
    def write_artifacts(self, outdir: str) -> Dict[str, str]:
        """Write every enabled collector's artifact plus a counter snapshot.

        Returns ``{artifact name: path}``.  The counter snapshot
        (``counters.json``) is always written — the registry needs no
        collector, only the device.
        """
        os.makedirs(outdir, exist_ok=True)
        written: Dict[str, str] = {}
        if self.tracer is not None:
            path = os.path.join(outdir, "trace.json")
            self.tracer.export_json(path)
            written["trace"] = path
        if self.sampler is not None:
            csv_path = os.path.join(outdir, "metrics.csv")
            self.sampler.export_csv(csv_path)
            written["metrics_csv"] = csv_path
            json_path = os.path.join(outdir, "metrics.json")
            self.sampler.export_json(json_path)
            written["metrics_json"] = json_path
        counters_path = os.path.join(outdir, "counters.json")
        snapshot = device_snapshot(self._ssd, host=self._host)
        with open(counters_path, "w", encoding="utf-8") as handle:
            handle.write(snapshot.to_json())
            handle.write("\n")
        written["counters"] = counters_path
        return written


def attach_telemetry(
    ssd: Any,
    telemetry: Any = "on",
    host: Any = None,
) -> Optional[Telemetry]:
    """Create a :class:`Telemetry` for ``ssd`` and install it.

    ``telemetry`` is a mode string (see :data:`TELEMETRY_MODES`) or a
    :class:`TelemetryConfig`.  Mode ``"off"`` leaves ``ssd.telemetry``
    as ``None`` — the zero-cost disabled path — and returns ``None``.
    ``host`` (a :class:`repro.host.interface.HostInterface`) adds
    per-namespace queue-depth columns to the sampler.
    """
    config = TelemetryConfig.coerce(telemetry)
    if config.mode == "off":
        ssd.telemetry = None  # simlint: disable=SIM008
        return None
    session = Telemetry(ssd, config, host=host)
    ssd.telemetry = session  # simlint: disable=SIM008
    return session
