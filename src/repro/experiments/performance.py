"""End-to-end performance experiments (Figures 16-18 and 21-25).

Every function here runs full SSD simulations (warm-up + trace replay) and
returns the series a benchmark prints.  "Normalized performance" follows the
paper's convention (lower is better, DFTL = 1.0); this reproduction uses the
mean *read* latency as the performance metric, because host writes are
absorbed by the controller write buffer in every scheme and the benefit of a
smaller mapping table — a larger data cache and fewer translation-page
fetches — materialises on the read path.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.latency import histogram_cdf, latency_cdf, normalize
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSetup,
    SCHEMES,
    build_ssd,
    oob_size_for_gamma,
    precondition,
    run_experiment,
    run_schemes,
    steady_state_workload,
)


def performance_setup(
    dram_policy: str = "mapping_first",
    gamma: int = 0,
    dram_bytes: int = 512 * 1024,
    request_scale: float = 0.25,
    **overrides: object,
) -> ExperimentSetup:
    """The standard performance-measurement setup (warm-up enabled)."""
    return ExperimentSetup(
        dram_policy=dram_policy,
        gamma=gamma,
        oob_size=oob_size_for_gamma(gamma),
        dram_bytes=dram_bytes,
        request_scale=request_scale,
        **overrides,  # type: ignore[arg-type]
    )


def normalized_performance(
    workloads: Sequence[str],
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
    baseline: str = "DFTL",
) -> Dict[str, Dict[str, float]]:
    """workload -> scheme -> normalized mean latency (Figures 16, 17, 22)."""
    setup = setup or performance_setup()
    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        results = run_schemes(workload, setup, schemes)
        latencies = {scheme: r.read_mean_latency_us for scheme, r in results.items()}
        table[workload] = normalize(latencies, baseline)
    return table


def raw_performance(
    workloads: Sequence[str],
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """workload -> scheme -> full experiment result."""
    setup = setup or performance_setup()
    return {workload: run_schemes(workload, setup, schemes) for workload in workloads}


def gamma_performance(
    workloads: Sequence[str],
    gammas: Sequence[int] = (0, 1, 4, 16),
    setup: Optional[ExperimentSetup] = None,
) -> Dict[str, Dict[int, float]]:
    """workload -> gamma -> LeaFTL latency normalized to gamma = 0 (Figure 21)."""
    base_setup = setup or performance_setup()
    table: Dict[str, Dict[int, float]] = {}
    for workload in workloads:
        latencies: Dict[int, float] = {}
        for gamma in gammas:
            run_setup = base_setup.scaled(
                gamma=gamma, oob_size=oob_size_for_gamma(gamma)
            )
            result = run_experiment(workload, "LeaFTL", run_setup)
            latencies[gamma] = result.read_mean_latency_us
        baseline = latencies[gammas[0]] or 1.0
        table[workload] = {gamma: value / baseline for gamma, value in latencies.items()}
    return table


def misprediction_ratios(
    workloads: Sequence[str],
    gammas: Sequence[int] = (0, 1, 4, 16),
    setup: Optional[ExperimentSetup] = None,
) -> Dict[str, Dict[int, float]]:
    """workload -> gamma -> misprediction ratio in percent (Figure 24)."""
    base_setup = setup or performance_setup()
    table: Dict[str, Dict[int, float]] = {}
    for workload in workloads:
        row: Dict[int, float] = {}
        for gamma in gammas:
            result = run_experiment(
                workload,
                "LeaFTL",
                base_setup.scaled(gamma=gamma, oob_size=oob_size_for_gamma(gamma)),
            )
            row[gamma] = 100.0 * result.misprediction_ratio
        table[workload] = row
    return table


def write_amplification(
    workloads: Sequence[str],
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
) -> Dict[str, Dict[str, float]]:
    """workload -> scheme -> WAF (Figure 25)."""
    setup = setup or performance_setup()
    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        results = run_schemes(workload, setup, schemes)
        table[workload] = {
            scheme: result.write_amplification for scheme, result in results.items()
        }
    return table


def latency_distribution(
    workload: str = "OLTP",
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
    points: Sequence[float] = (0.0, 30.0, 60.0, 90.0, 99.0, 99.9),
    queue_depth: Optional[int] = None,
    replay_mode: Optional[str] = None,
) -> Dict[str, Dict[float, float]]:
    """scheme -> CDF point -> read latency in microseconds (Figure 18).

    ``queue_depth > 1`` replays through the event-driven engine, so the CDF
    reflects foreground reads contending with background flush/GC traffic
    and with each other — the regime the paper's tail-latency figure
    describes.  ``replay_mode="open"`` admits requests at their trace
    timestamps instead (stamped at ``setup.open_loop_interarrival_us`` for
    synthetic traces), so the CDF measures latency against arrival times.
    """
    setup = setup or performance_setup()
    if queue_depth is not None:
        setup = setup.scaled(queue_depth=queue_depth)
    results = run_schemes(workload, setup, schemes, replay_mode=replay_mode)
    return {
        scheme: latency_cdf(result.latency_samples, points)
        for scheme, result in results.items()
    }


def open_loop_load_sweep(
    workload: str = "OLTP",
    interarrivals_us: Sequence[float] = (80.0, 40.0, 20.0, 10.0, 5.0),
    setup: Optional[ExperimentSetup] = None,
    scheme: str = "LeaFTL",
) -> Dict[float, Dict[str, float]]:
    """inter-arrival time -> latency/backlog metrics under open-loop replay.

    Each column replays the same trace with arrivals stamped at a fixed
    spacing: tighter spacing means a higher offered load.  Because
    admission is arrival-driven (not completion-driven), latency measured
    against arrival time grows without bound once the offered load exceeds
    the device's service rate — ``max_outstanding`` shows how deep the
    backlog got.
    """
    base = setup or performance_setup()
    table: Dict[float, Dict[str, float]] = {}
    for interarrival in interarrivals_us:
        run_setup = base.scaled(
            replay_mode="open", open_loop_interarrival_us=interarrival
        )
        result = run_experiment(workload, scheme, run_setup)
        stats = result.stats
        table[interarrival] = {
            "read_mean_us": result.read_mean_latency_us,
            "read_p99_us": result.read_p99_us,
            "read_stall_us": stats.read_stall_us,
            "measured_time_us": stats.measured_time_us,
            "max_outstanding": float(stats.max_outstanding_requests),
        }
    return table


def queue_depth_sweep(
    workload: str = "OLTP",
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
    setup: Optional[ExperimentSetup] = None,
    scheme: str = "LeaFTL",
) -> Dict[int, Dict[str, float]]:
    """queue depth -> latency/throughput metrics under NCQ concurrency.

    Each depth replays the same trace after an identical (serial) warm-up;
    only the measured phase changes concurrency.  Reported per depth:

    * ``read_mean_us`` / ``read_p99_us`` — foreground read latency, which
      *grows* with depth as requests contend for channels;
    * ``read_stall_us`` — total time reads queued behind busy channels;
    * ``measured_time_us`` — makespan of the measured replay (warm-up
      excluded), which *shrinks* with depth as the device overlaps more
      work (throughput gain);
    * ``page_kiops`` — host *page* operations per measured millisecond
      (``host_reads``/``host_writes`` count pages, not commands, so a
      64-page command contributes 64).
    """
    base = setup or performance_setup()
    table: Dict[int, Dict[str, float]] = {}
    for depth in depths:
        result = run_experiment(workload, scheme, base.scaled(queue_depth=depth))
        stats = result.stats
        elapsed_ms = max(stats.measured_time_us / 1000.0, 1e-9)
        table[depth] = {
            "read_mean_us": result.read_mean_latency_us,
            "read_p99_us": result.read_p99_us,
            "read_stall_us": stats.read_stall_us,
            "measured_time_us": stats.measured_time_us,
            "page_kiops": stats.total_requests / elapsed_ms,
        }
    return table


def _aging_setup(
    overprovisioning: float,
    gc_policy: str,
    gc_mode: str,
    queue_depth: int,
    capacity_bytes: int,
) -> ExperimentSetup:
    """Device used by the steady-state GC studies.

    Small blocks (64 pages) on 8 channels keep the over-provisioning knob
    meaningful: the physical size is rounded up to whole blocks per channel,
    and with the paper's 256-page blocks a small device would quantise every
    OP ratio to nearly the same block count.
    """
    return ExperimentSetup(
        capacity_bytes=capacity_bytes,
        pages_per_block=64,
        channels=8,
        overprovisioning=overprovisioning,
        gc_policy=gc_policy,
        gc_mode=gc_mode,
        queue_depth=queue_depth,
        warmup=False,
    )


def aging_sweep(
    op_ratios: Sequence[float] = (0.08, 0.16, 0.28),
    policies: Sequence[str] = ("greedy", "cost_benefit", "d_choices"),
    gc_mode: str = "sync",
    scheme: str = "LeaFTL",
    num_requests: int = 6000,
    queue_depth: int = 1,
    capacity_bytes: int = 48 * 1024 * 1024,
    seed: int = 23,
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """policy -> over-provisioning ratio -> steady-state GC metrics.

    Each cell builds a device with the given over-provisioning ratio and
    victim policy, ages it into steady state with
    :func:`repro.experiments.common.precondition` (sequential fill + skewed
    overwrites), then replays an overwrite-heavy Zipf mix and reports:

    * ``waf`` — write amplification during the measured phase.  The
      expected trend (the fig25-style steady-state claim): WAF falls as
      over-provisioning grows, for every policy, because GC victims have
      more time to shed valid pages before space runs out;
    * ``gc_page_writes`` / ``gc_invocations`` — raw reclaim volume;
    * ``read_p99_us`` — tail read latency including GC interference;
    * ``gc_write_throttle_us`` — time host writes stalled below the hard
      watermark.
    """
    table: Dict[str, Dict[float, Dict[str, float]]] = {}
    for policy in policies:
        row: Dict[float, Dict[str, float]] = {}
        for op_ratio in op_ratios:
            setup = _aging_setup(
                op_ratio, policy, gc_mode, queue_depth, capacity_bytes
            )
            ssd = build_ssd(scheme, setup)
            footprint = precondition(ssd)
            stats = ssd.run(
                steady_state_workload(footprint, num_requests, seed=seed)
            )
            row[op_ratio] = {
                "waf": stats.write_amplification,
                "gc_page_writes": float(stats.gc_page_writes),
                "gc_invocations": float(stats.gc_invocations),
                "read_p99_us": stats.read_latency.percentile(99),
                "gc_write_throttle_us": stats.gc_write_throttle_us,
            }
        table[policy] = row
    return table


def gc_mode_comparison(
    gc_policy: str = "greedy",
    overprovisioning: float = 0.12,
    queue_depth: int = 8,
    scheme: str = "LeaFTL",
    num_requests: int = 6000,
    capacity_bytes: int = 48 * 1024 * 1024,
    seed: int = 23,
) -> Dict[str, Dict[str, float]]:
    """gc_mode -> tail-latency/WAF metrics on a contended aged device.

    Replays the identical steady-state workload at ``queue_depth`` with the
    classic synchronous reclaim loop and with the background GC pipeline.
    Background GC migrates one victim at a time between host requests, so
    foreground reads stall behind at most one migration stage instead of a
    whole multi-victim reclaim burst — the p99 read latency drops sharply
    while WAF stays comparable (collection is deferred, not skipped).
    """
    table: Dict[str, Dict[str, float]] = {}
    for gc_mode in ("sync", "background"):
        setup = _aging_setup(
            overprovisioning, gc_policy, gc_mode, queue_depth, capacity_bytes
        )
        ssd = build_ssd(scheme, setup)
        footprint = precondition(ssd)
        stats = ssd.run(steady_state_workload(footprint, num_requests, seed=seed))
        table[gc_mode] = {
            "read_mean_us": stats.read_latency.mean_us,
            "read_p99_us": stats.read_latency.percentile(99),
            "read_stall_us": stats.read_stall_us,
            "waf": stats.write_amplification,
            "gc_page_writes": float(stats.gc_page_writes),
            "gc_background_runs": float(stats.gc_background_runs),
            "gc_write_throttle_us": stats.gc_write_throttle_us,
        }
    return table


def lookup_level_cdf(
    workloads: Sequence[str],
    setup: Optional[ExperimentSetup] = None,
    fractions: Sequence[float] = (0.90, 0.99, 0.999, 0.9999),
) -> Dict[str, Dict[str, float]]:
    """workload -> statistics of levels searched per lookup (Figure 23a)."""
    setup = setup or performance_setup()
    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        result = run_experiment(workload, "LeaFTL", setup)
        histogram = result.levels_histogram
        total = sum(histogram.values())
        row: Dict[str, float] = {}
        if total:
            mean = sum(level * count for level, count in histogram.items()) / total
            row["mean"] = mean
            cdf_points = histogram_cdf(histogram)
            for fraction in fractions:
                threshold = next(
                    (value for value, cum in cdf_points if cum >= fraction),
                    cdf_points[-1][0],
                )
                row[f"p{fraction * 100:g}"] = float(threshold)
        table[workload] = row
    return table


def dram_size_sensitivity(
    workloads: Sequence[str],
    dram_sizes: Sequence[int],
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
    baseline: str = "DFTL",
) -> Dict[int, Dict[str, float]]:
    """DRAM size -> scheme -> normalized latency averaged over workloads (Fig. 22a)."""
    base_setup = setup or performance_setup()
    table: Dict[int, Dict[str, float]] = {}
    for dram in dram_sizes:
        sized = base_setup.scaled(dram_bytes=dram)
        sums: Dict[str, float] = {scheme: 0.0 for scheme in schemes}
        for workload in workloads:
            results = run_schemes(workload, sized, schemes)
            for scheme, result in results.items():
                sums[scheme] += result.read_mean_latency_us
        table[dram] = normalize(sums, baseline)
    return table


def page_size_sensitivity(
    workloads: Sequence[str],
    page_sizes: Sequence[int] = (4096, 8192, 16384),
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = SCHEMES,
    baseline: str = "DFTL",
) -> Dict[int, Dict[str, float]]:
    """Flash page size -> scheme -> normalized latency (Figure 22b).

    The paper fixes the number of flash pages while growing the page size, so
    the capacity grows with the page size; the same is done here.
    """
    base_setup = setup or performance_setup()
    table: Dict[int, Dict[str, float]] = {}
    for page_size in page_sizes:
        scale = page_size // base_setup.page_size
        sized = base_setup.scaled(
            page_size=page_size,
            capacity_bytes=base_setup.capacity_bytes * scale,
        )
        sums: Dict[str, float] = {scheme: 0.0 for scheme in schemes}
        for workload in workloads:
            results = run_schemes(workload, sized, schemes)
            for scheme, result in results.items():
                sums[scheme] += result.read_mean_latency_us
        table[page_size] = normalize(sums, baseline)
    return table
