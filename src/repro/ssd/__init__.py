"""SSD substrate: cache, write buffer, GC, wear leveling and the device model."""

from repro.ssd.cache import CacheStats, LRUDataCache
from repro.ssd.gc import (
    BackgroundGCController,
    CostBenefitGCPolicy,
    DChoicesGCPolicy,
    GC_POLICIES,
    GCPolicy,
    GCPolicyConfig,
    GreedyGCPolicy,
    make_gc_policy,
)
from repro.ssd.ssd import SimulatedSSD, SimulationError, SSDOptions
from repro.ssd.stats import LatencyRecorder, SSDStats
from repro.ssd.wear_leveling import WearLeveler, WearLevelingConfig
from repro.ssd.write_buffer import WriteBuffer, WriteBufferStats

__all__ = [
    "CacheStats",
    "LRUDataCache",
    "BackgroundGCController",
    "CostBenefitGCPolicy",
    "DChoicesGCPolicy",
    "GC_POLICIES",
    "GCPolicy",
    "GCPolicyConfig",
    "GreedyGCPolicy",
    "make_gc_policy",
    "SimulatedSSD",
    "SimulationError",
    "SSDOptions",
    "LatencyRecorder",
    "SSDStats",
    "WearLeveler",
    "WearLevelingConfig",
    "WriteBuffer",
    "WriteBufferStats",
]
