"""Figure 25: write amplification factor (SSD lifetime impact).

The paper shows LeaFTL's WAF is comparable to DFTL and SFTL (DFTL is usually
the worst because of its translation-page write-backs), i.e. the learned
mapping does not age the SSD faster.
"""

from __future__ import annotations

from repro.analysis.report import print_report, render_series
from repro.experiments.performance import write_amplification

from benchmarks.conftest import perf_setup, run_once

WORKLOADS = ("MSR-prxy", "FIU-mail", "TPCC", "OLTP")


def test_fig25_write_amplification(benchmark):
    setup = perf_setup()
    table = run_once(benchmark, write_amplification, WORKLOADS, setup)

    print_report(render_series(
        "Figure 25: write amplification factor (lower is better)",
        {wl: {s: round(v, 3) for s, v in row.items()} for wl, row in table.items()},
        column_order=("DFTL", "SFTL", "LeaFTL"),
    ))

    for workload, row in table.items():
        # At the scaled-down trace sizes the controller write buffer absorbs
        # overwrites, so WAF legitimately dips below 1.0 for every scheme —
        # the figure's claim is the *relative* one: LeaFTL must not amplify
        # writes meaningfully more than the baselines.
        assert row["LeaFTL"] > 0.0
        assert row["LeaFTL"] <= max(row["DFTL"], row["SFTL"]) * 1.15, workload
