# Fixture for SIM001 (no-wall-clock).  Lines with violations carry an
# expect-marker comment naming the rule code; the test asserts the reported
# (line, code) pairs match the markers exactly.  NOT imported — parsed by
# simlint only.
import time
import datetime
from time import perf_counter
from datetime import datetime as dt
from time import monotonic as mono


def bad_direct() -> float:
    return time.time()  # expect: SIM001


def bad_ns() -> int:
    return time.time_ns()  # expect: SIM001


def bad_perf() -> float:
    return perf_counter()  # expect: SIM001


def bad_aliased() -> float:
    return mono()  # expect: SIM001


def bad_datetime():
    a = datetime.datetime.now()  # expect: SIM001
    b = dt.utcnow()  # expect: SIM001
    return a, b


def suppressed() -> float:
    return time.time()  # simlint: disable=SIM001


def ok_simulated(now_us: float, at_us: float) -> float:
    # Simulated clocks are plain parameters/attributes — no finding.
    return max(now_us, at_us)


def ok_strftime() -> str:
    # Formatting an *existing* datetime object is not a clock read.
    return datetime.datetime(2020, 1, 1).isoformat()
